"""Per-tenant accounting for co-located runs.

The machine-level :class:`~repro.memsim.metrics.SimulationReport` stays
the ground truth; each tenant's report holds *the same epoch rows*,
restricted to the epochs that tenant's batches executed.  Per-tenant
totals therefore sum exactly to the machine totals — an invariant the
tests pin down — and every `SimulationReport` readout (timelines,
throughput, hit ratios) works unchanged per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memsim.metrics import SimulationReport
from repro.multitenant.spec import TenantSpec


def jain_fairness(values) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even; 1/n means one value dwarfs the rest.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("fairness index needs at least one value")
    if (arr < 0).any():
        raise ValueError("fairness index needs non-negative values")
    denom = arr.size * float((arr**2).sum())
    if denom == 0.0:
        return 1.0
    return float(arr.sum()) ** 2 / denom


@dataclass
class TenantReport:
    """One tenant's slice of a co-located run."""

    spec: TenantSpec
    report: SimulationReport
    #: runtime of the same workload alone on the same machine (seconds);
    #: filled in by the experiment harness when it runs solo baselines.
    solo_time_s: float | None = None

    @property
    def colocated_time_s(self) -> float:
        """Time spent executing this tenant's own batches."""
        return self.report.total_time_s

    @property
    def slowdown(self) -> float | None:
        """Contention slowdown vs. running alone (>= ~1 under load).

        Both runs execute the same number of the tenant's batches, so
        the ratio isolates *contention* (lost fast-tier share, CXL
        bandwidth queueing, shared policy attention) from time-sharing.
        """
        if self.solo_time_s is None or self.solo_time_s <= 0:
            return None
        return self.colocated_time_s / self.solo_time_s


@dataclass
class ColocationReport:
    """Everything measured during one co-located run."""

    machine: SimulationReport
    tenants: dict[str, TenantReport]
    scheduler: str = ""
    policy_scope: str = "shared"
    annotations: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantReport:
        return self.tenants[name]

    @property
    def slowdowns(self) -> dict[str, float]:
        """Per-tenant slowdown vs. solo (only tenants with baselines)."""
        return {
            name: tr.slowdown
            for name, tr in self.tenants.items()
            if tr.slowdown is not None
        }

    def fairness(self) -> float:
        """Jain's index over per-tenant slowdowns.

        Slowdown-vs-solo is the QoS quantity an operator equalizes: a
        fairness of 1.0 means contention hurt every tenant equally.
        """
        slowdowns = self.slowdowns
        if len(slowdowns) != len(self.tenants):
            raise ValueError("fairness needs a solo baseline for every tenant")
        return jain_fairness(slowdowns.values())

    # ------------------------------------------------------------------
    def verify_conservation(self) -> None:
        """Assert per-tenant metrics partition the machine-level run.

        Every machine epoch belongs to exactly one tenant, so tenant
        totals must sum to machine totals for each conserved counter.
        """
        tenant_epochs = sum(len(tr.report.epochs) for tr in self.tenants.values())
        if tenant_epochs != len(self.machine.epochs):
            raise AssertionError(
                f"{tenant_epochs} tenant epochs vs "
                f"{len(self.machine.epochs)} machine epochs"
            )
        conserved = (
            "total_accesses",
            "total_llc_misses",
            "total_slow_traffic_bytes",
            "total_promoted_pages",
            "total_demoted_pages",
            "total_ping_pong_events",
        )
        for attr in conserved:
            machine_total = getattr(self.machine, attr)
            tenant_total = sum(getattr(tr.report, attr) for tr in self.tenants.values())
            if tenant_total != machine_total:
                raise AssertionError(
                    f"{attr}: tenants sum to {tenant_total}, machine has {machine_total}"
                )
        machine_ns = self.machine.total_time_ns
        tenant_ns = sum(tr.report.total_time_ns for tr in self.tenants.values())
        if abs(tenant_ns - machine_ns) > 1e-6 * max(machine_ns, 1.0):
            raise AssertionError(
                f"total_time_ns: tenants sum to {tenant_ns}, machine has {machine_ns}"
            )

    def summary(self) -> dict[str, object]:
        """Compact dictionary for experiment tables."""
        out: dict[str, object] = {
            "policy": self.machine.policy,
            "scheduler": self.scheduler,
            "tenants": len(self.tenants),
            "machine_time_s": self.machine.total_time_s,
        }
        slowdowns = self.slowdowns
        if slowdowns and len(slowdowns) == len(self.tenants):
            out["fairness"] = self.fairness()
            out["mean_slowdown"] = float(np.mean(list(slowdowns.values())))
            out["worst_slowdown"] = float(max(slowdowns.values()))
        return out
