"""Per-tenant address-space namespaces over one shared page table.

Co-located tenants each see a private, zero-based virtual address space;
the machine sees one flat page-id space shared by the page table, the
NUMA topology and the LLC model.  A :class:`TenantNamespace` is the
translation between the two — a contiguous window ``[base, base +
num_pages)`` of the shared space — and :class:`AddressSpaceLayout`
packs N tenants into disjoint windows so tenants can *contend* for the
fast tier without ever aliasing each other's pages.

(Contiguous windows mirror what a real multi-tenant tiering daemon
sees: per-process page ranges that are disjoint in the physical address
map but compete for the same fast-tier capacity and CXL bandwidth.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.multitenant.spec import TenantSpec


@dataclass(frozen=True)
class TenantNamespace:
    """One tenant's window into the shared page-id space."""

    tenant: str
    base: int
    num_pages: int

    @property
    def end(self) -> int:
        """One past the last global page id owned by the tenant."""
        return self.base + self.num_pages

    # ------------------------------------------------------------------
    def to_global(self, pages: np.ndarray) -> np.ndarray:
        """Translate tenant-local page ids into shared page ids."""
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size and (pages.min() < 0 or pages.max() >= self.num_pages):
            raise ValueError(
                f"tenant {self.tenant!r}: local page id outside "
                f"[0, {self.num_pages})"
            )
        return pages + self.base

    def to_local(self, global_pages: np.ndarray) -> np.ndarray:
        """Translate shared page ids the tenant owns back to local ids."""
        global_pages = np.asarray(global_pages, dtype=np.int64)
        if global_pages.size and not self.owns(global_pages).all():
            raise ValueError(
                f"tenant {self.tenant!r}: page id outside "
                f"[{self.base}, {self.end})"
            )
        return global_pages - self.base

    def owns(self, global_pages: np.ndarray) -> np.ndarray:
        """Boolean mask over ``global_pages``: True where inside the window."""
        global_pages = np.asarray(global_pages, dtype=np.int64)
        return (global_pages >= self.base) & (global_pages < self.end)

    def global_slice(self) -> slice:
        """The tenant's window as a slice into flat per-page arrays."""
        return slice(self.base, self.end)


class AddressSpaceLayout:
    """Disjoint namespace assignment for a tenant mix.

    Tenants are packed back to back in spec order; the layout is the
    single source of truth for who owns which shared page id.
    """

    def __init__(self, specs: Sequence[TenantSpec]) -> None:
        if not specs:
            raise ValueError("layout needs at least one tenant")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        self.specs = tuple(specs)
        self._namespaces: dict[str, TenantNamespace] = {}
        base = 0
        for spec in specs:
            self._namespaces[spec.name] = TenantNamespace(spec.name, base, spec.num_pages)
            base += spec.num_pages
        self.total_pages = base
        #: window lower bounds in layout order, for owner lookups
        self._bases = np.array([ns.base for ns in self._namespaces.values()], dtype=np.int64)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[TenantNamespace]:
        return iter(self._namespaces.values())

    def namespace(self, tenant: str) -> TenantNamespace:
        return self._namespaces[tenant]

    def owner_index_of(self, global_pages: np.ndarray) -> np.ndarray:
        """Index into ``specs`` of the tenant owning each shared page id."""
        global_pages = np.asarray(global_pages, dtype=np.int64)
        if global_pages.size and (
            global_pages.min() < 0 or global_pages.max() >= self.total_pages
        ):
            raise ValueError("page id outside the shared address space")
        return np.searchsorted(self._bases, global_pages, side="right") - 1

    def register_with(self, page_table) -> None:
        """Register every namespace window with the shared page table."""
        for ns in self:
            page_table.register_namespace(ns.tenant, ns.base, ns.num_pages)
