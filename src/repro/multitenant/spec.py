"""Tenant descriptions for the co-location layer.

A :class:`TenantSpec` is everything the scheduler and the QoS arbiter
need to know about one workload sharing the machine: its RSS share of
the combined address space, its scheduling weight/priority, and its
fast-tier allowance.  The spec is deliberately decoupled from the
workload *object* so harnesses can describe a tenant mix declaratively
and instantiate trace generators later.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a co-located machine.

    Args:
        name: Unique tenant label (doubles as the page-table namespace
            label).
        workload: Registered workload name (see
            :func:`repro.workloads.make_workload`).
        num_pages: The tenant's RSS share, in base pages.
        weight: Share weight for the weighted-share scheduler; a tenant
            with weight 2 receives twice the epochs of a weight-1 tenant.
        priority: Strict priority level for the priority scheduler;
            higher runs first.
        fast_quota_fraction: QoS knob — the fraction of the *fast tier's*
            capacity this tenant may occupy.  ``None`` means unlimited
            (best-effort sharing); 0.0 pins the tenant entirely to CXL.
        cold_start: When True, the warm-up pre-fill places this tenant's
            pages on the slow tier only, modelling a tenant that arrives
            on a machine whose fast tier other tenants already filled.
        workload_overrides: Extra keyword arguments for the workload
            factory (hot-set fraction, write ratio, ...).
    """

    name: str
    workload: str
    num_pages: int
    weight: float = 1.0
    priority: int = 0
    fast_quota_fraction: float | None = None
    cold_start: bool = False
    workload_overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a non-empty name")
        if self.num_pages <= 0:
            raise ValueError(f"tenant {self.name!r}: num_pages must be positive")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.fast_quota_fraction is not None and not 0.0 <= self.fast_quota_fraction <= 1.0:
            raise ValueError(
                f"tenant {self.name!r}: fast_quota_fraction must lie in [0, 1]"
            )
