"""Multi-tenant co-location: N workloads sharing one tiered machine.

The layer the paper's datacenter regime (DeathStarBench, contended CXL
bandwidth, shifting hot sets) actually runs in: several tenants share
one fast tier and one CXL channel, a scheduler interleaves their
batches, and a QoS arbiter decides how the tiering policy's attention
and the fast tier's capacity are divided.

Building blocks:

* :class:`TenantSpec` / :class:`TenantNamespace` /
  :class:`AddressSpaceLayout` — who the tenants are and which disjoint
  windows of the shared page-id space they own;
* :mod:`~repro.multitenant.scheduler` — round-robin, weighted-share and
  strict-priority epoch interleaving;
* :class:`TenantPolicyArbiter` / :class:`QosConfig` — shared vs.
  per-tenant tiering policies plus cgroup-like fast-tier quotas;
* :class:`ColocationEngine` — drives the shared
  :class:`~repro.memsim.engine.SimulationEngine` one tenant batch per
  epoch and splits the metrics per tenant;
* :class:`ColocationReport` — per-tenant slowdown-vs-solo accounting
  and Jain's fairness index.

See :mod:`repro.experiments.colocation` for the sweep harness and
``examples/colocation_qos.py`` for a guided demo.
"""

from repro.multitenant.arbitration import POLICY_SCOPES, QosConfig, TenantPolicyArbiter
from repro.multitenant.engine import ColocationEngine, TenantRuntime
from repro.multitenant.metrics import ColocationReport, TenantReport, jain_fairness
from repro.multitenant.namespace import AddressSpaceLayout, TenantNamespace
from repro.multitenant.scheduler import (
    SCHEDULER_NAMES,
    PriorityScheduler,
    RoundRobinScheduler,
    TenantScheduler,
    WeightedShareScheduler,
    make_scheduler,
)
from repro.multitenant.spec import TenantSpec

__all__ = [
    "POLICY_SCOPES",
    "QosConfig",
    "TenantPolicyArbiter",
    "ColocationEngine",
    "TenantRuntime",
    "ColocationReport",
    "TenantReport",
    "jain_fairness",
    "AddressSpaceLayout",
    "TenantNamespace",
    "SCHEDULER_NAMES",
    "TenantScheduler",
    "RoundRobinScheduler",
    "WeightedShareScheduler",
    "PriorityScheduler",
    "make_scheduler",
    "TenantSpec",
]
