"""Co-location engine: N workloads time-sharing one tiered machine.

The existing :class:`~repro.memsim.engine.SimulationEngine` stays the
substrate — one shared page table, NUMA topology, LLC filter, LRU-2Q
and migration engine, all sized to the *combined* resident set — and
the co-location layer drives it one tenant batch per epoch:

1. the scheduler picks a runnable tenant (round-robin, weighted-share
   or priority);
2. the tenant's workload emits a batch in its private address space,
   which its namespace translates into shared page ids;
3. the inner engine simulates the epoch against the shared machine —
   so tenants genuinely contend for fast-tier capacity and suffer each
   other's CXL bandwidth queueing, which persists across epochs via the
   tiers' utilization state;
4. the :class:`~repro.multitenant.arbitration.TenantPolicyArbiter`
   dispatches the epoch to the shared (or per-tenant) tiering policy
   and enforces fast-tier quotas;
5. the epoch's metrics row lands in both the machine-level report and
   the producing tenant's report, so per-tenant accounting partitions
   machine accounting exactly.

Time is *virtual-machine* time: each epoch's duration is the time the
machine spent on that tenant's batch, so a tenant's summed durations
are comparable against a solo run of the same trace (the slowdown
metric), independent of how long other tenants kept the machine busy.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.memsim.engine import EngineConfig, SimulationEngine, Workload
from repro.memsim.metrics import SimulationReport
from repro.memsim.tiers import TierSpec
from repro.multitenant.arbitration import QosConfig, TenantPolicyArbiter
from repro.multitenant.metrics import ColocationReport, TenantReport
from repro.multitenant.namespace import AddressSpaceLayout, TenantNamespace
from repro.multitenant.scheduler import TenantScheduler, make_scheduler
from repro.multitenant.spec import TenantSpec


class _SharedAddressSpace:
    """Workload stand-in describing the combined address space.

    The inner engine sizes its page table, LLC filter and capacity check
    from this; batches are injected through ``step()`` by the
    co-location loop, so ``next_batch`` only signals exhaustion.
    """

    def __init__(self, name: str, num_pages: int) -> None:
        self.name = name
        self.num_pages = num_pages

    def next_batch(self, rng):  # pragma: no cover - run() is never used
        return None


class TenantRuntime:
    """One tenant's live state inside a co-located run."""

    def __init__(self, spec: TenantSpec, namespace: TenantNamespace, workload: Workload) -> None:
        if workload.num_pages != spec.num_pages:
            raise ValueError(
                f"tenant {spec.name!r}: workload RSS {workload.num_pages} "
                f"pages != spec.num_pages {spec.num_pages}"
            )
        self.spec = spec
        self.namespace = namespace
        self.workload = workload
        self.report = SimulationReport(workload=workload.name, policy="")
        self.done = False


class ColocationEngine:
    """Runs N tenants against one shared :class:`SimulationEngine`."""

    def __init__(
        self,
        tenants: Sequence[tuple[TenantSpec, Workload]],
        topology_spec: list[tuple[TierSpec, int]],
        policy_factory: Callable[[], object],
        config: EngineConfig | None = None,
        scheduler: TenantScheduler | str = "round-robin",
        qos: QosConfig | None = None,
    ) -> None:
        if not tenants:
            raise ValueError("co-location needs at least one tenant")
        specs = [spec for spec, _ in tenants]
        self.layout = AddressSpaceLayout(specs)
        self.qos = qos or QosConfig()
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, specs)
        self.scheduler = scheduler

        self.tenants: dict[str, TenantRuntime] = {}
        for spec, workload in tenants:
            self.tenants[spec.name] = TenantRuntime(
                spec, self.layout.namespace(spec.name), workload
            )

        self.arbiter = TenantPolicyArbiter(
            specs, self.layout, policy_factory, self.qos
        )
        shared_space = _SharedAddressSpace(
            name="+".join(spec.name for spec in specs),
            num_pages=self.layout.total_pages,
        )
        self.inner = SimulationEngine(shared_space, topology_spec, self.arbiter, config)
        self.layout.register_with(self.inner.page_table)
        for runtime in self.tenants.values():
            runtime.report.policy = self.arbiter.name
        # Per-tenant metric partitions: each tenant's epochs publish into
        # a child registry that forwards to the machine registry, so
        # tenant counter sums equal machine counters — the same
        # conservation invariant the epoch metrics obey.
        self._tenant_registries = (
            {name: self.inner.telemetry.registry.child() for name in self.tenants}
            if self.inner.telemetry.enabled
            else {}
        )

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def page_table(self):
        return self.inner.page_table

    @property
    def topology(self):
        return self.inner.topology

    @property
    def config(self) -> EngineConfig:
        return self.inner.config

    # ------------------------------------------------------------------
    def prefill(self) -> None:
        """Warm-up first-touch for the whole tenant mix.

        Mirrors the single-tenant warm-up (allocation order uncorrelated
        with future hotness): warm tenants' pages are pre-touched in one
        *interleaved* pseudo-random permutation, so each gets a fast-tier
        share proportional to its RSS — as if their init phases ran
        concurrently.  ``cold_start`` tenants allocate slow-tier-only
        first, modelling arrival on a machine whose fast tier the
        incumbent tenants had already filled.
        """
        rng = np.random.default_rng(self.inner.config.seed ^ 0x5EED)
        cold, warm = [], []
        for runtime in self.tenants.values():
            ns = runtime.namespace
            (cold if runtime.spec.cold_start else warm).append(
                np.arange(ns.base, ns.end, dtype=np.int64)
            )
        for pages in cold:
            self.inner.topology.first_touch_allocate(
                self.inner.page_table, rng.permutation(pages), start_node=1
            )
        if warm:
            mixed = rng.permutation(np.concatenate(warm))
            self.inner.topology.first_touch_allocate(self.inner.page_table, mixed)

    # ------------------------------------------------------------------
    def run(self) -> ColocationReport:
        """Interleave tenant batches until every workload finishes."""
        while True:
            runnable = [t for t in self.tenants.values() if not t.done]
            if not runnable:
                break
            tenant = self.scheduler.pick(runnable)
            batch = tenant.workload.next_batch(self.inner.rng)
            if batch is None:
                tenant.done = True
                continue
            pages, is_write = batch
            global_pages = tenant.namespace.to_global(pages)
            self.arbiter.set_current(tenant.spec.name)
            if self._tenant_registries:
                with self.inner.telemetry.scoped_registry(
                    self._tenant_registries[tenant.spec.name]
                ):
                    metrics = self.inner.step(global_pages, is_write)
            else:
                metrics = self.inner.step(global_pages, is_write)
            tenant.report.append(metrics)
        report = ColocationReport(
            machine=self.inner.report,
            tenants={
                name: TenantReport(spec=rt.spec, report=rt.report)
                for name, rt in self.tenants.items()
            },
            scheduler=self.scheduler.name,
            policy_scope=self.qos.policy_scope,
        )
        if self.inner.telemetry.enabled:
            report.annotations["telemetry"] = {
                "machine": self.inner.telemetry.registry.snapshot(),
                "tenants": {
                    name: reg.snapshot()
                    for name, reg in self._tenant_registries.items()
                },
            }
        return report
