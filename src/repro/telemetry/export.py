"""Exporters: Chrome trace-event JSON and the JSONL run manifest.

*Chrome trace* — :func:`export_chrome_trace` serializes the global
trace buffer in the Trace Event Format (the ``traceEvents`` JSON array
Perfetto and ``chrome://tracing`` load): spans become complete (``X``)
events with microsecond timestamps, audit events become thread-scoped
instants (``i``), and per-lane metadata events name each engine's
track after its workload/policy.

*Run manifest* — one JSON line per executed sweep job, written next to
the job's cache entry: the job's content hash (which *is* its config
hash), seed, the repo's git revision, and the run's per-phase
wall-clock totals when telemetry was enabled.  ``MANIFEST.jsonl`` is
append-only and survives :func:`~repro.experiments.backends.merge_shards`
fan-in, so a merged cache still says where every entry came from.
"""

from __future__ import annotations

import json
import os
import subprocess
from functools import lru_cache
from pathlib import Path

from repro.telemetry.core import Telemetry, get_telemetry

#: manifest file name inside a sweep cache directory
MANIFEST_NAME = "MANIFEST.jsonl"


@lru_cache(maxsize=1)
def git_revision() -> str:
    """The repo's HEAD commit (short), or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace_events(telemetry: Telemetry | None = None) -> list[dict]:
    """The trace buffer as a list of Trace Event Format dicts."""
    tel = telemetry if telemetry is not None else get_telemetry()
    if tel.trace is None:
        return []
    pid = os.getpid()
    events: list[dict] = []
    for track, label in sorted(tel.trace.track_labels.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": track,
                "args": {"name": label},
            }
        )
    for ph, name, ts_ns, dur_ns, track, args in tel.trace.events:
        event = {
            "name": name,
            "cat": "repro",
            "ph": ph,
            "ts": ts_ns / 1000.0,
            "pid": pid,
            "tid": track,
        }
        if ph == "X":
            event["dur"] = dur_ns / 1000.0
        else:
            event["s"] = "t"  # thread-scoped instant
        if args:
            event["args"] = args
        events.append(event)
    return events


def export_chrome_trace(
    path: str | os.PathLike | None = None,
    telemetry: Telemetry | None = None,
) -> dict:
    """Build (and optionally write) the Chrome/Perfetto trace document."""
    tel = telemetry if telemetry is not None else get_telemetry()
    document = {
        "traceEvents": chrome_trace_events(tel),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.telemetry",
            "mode": tel.mode_name,
            "dropped_events": tel.trace.dropped if tel.trace is not None else 0,
        },
    }
    if path is not None:
        Path(path).write_text(json.dumps(document) + "\n")
    return document


# ----------------------------------------------------------------------
# JSONL run manifest
# ----------------------------------------------------------------------
def manifest_record(
    key: str,
    label: str,
    seed: int | None,
    result=None,
    wall_s: float | None = None,
) -> dict:
    """One manifest line for an executed sweep job.

    ``key`` is :func:`~repro.experiments.sweep.job_key` — the stable
    content hash of the job's full configuration.  Per-phase totals are
    lifted from the result's telemetry annotations when the run
    collected them.  ``wall_s`` is the worker-measured real wall clock
    of the job (``runtime_s`` is *simulated* seconds) — the signal the
    cost-weighted scheduler mines for LPT weights.
    """
    record: dict = {
        "key": key,
        "label": label,
        "seed": seed,
        "git_rev": git_revision(),
        "phase_ns": None,
        "runtime_s": None,
        "wall_s": float(wall_s) if isinstance(wall_s, (int, float)) else None,
    }
    annotations = getattr(result, "annotations", None)
    if isinstance(annotations, dict):
        telemetry = annotations.get("telemetry")
        if isinstance(telemetry, dict):
            record["phase_ns"] = telemetry.get("phases") or None
    total_time_s = getattr(result, "total_time_s", None)
    if isinstance(total_time_s, (int, float)):
        record["runtime_s"] = float(total_time_s)
    return record


def append_manifest(cache_dir: str | os.PathLike, record: dict) -> Path:
    """Append one record to ``cache_dir/MANIFEST.jsonl`` (one JSON line)."""
    path = Path(cache_dir) / MANIFEST_NAME
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_manifest(cache_dir: str | os.PathLike) -> list[dict]:
    """Every record in a cache directory's manifest (empty if none)."""
    path = Path(cache_dir) / MANIFEST_NAME
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
