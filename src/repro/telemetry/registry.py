"""Process-local metrics registry: counters, gauges, log2 histograms.

No dependencies, no locks (the simulator is single-threaded per
process; cross-process aggregation happens through snapshots riding
report annotations).  Three metric kinds cover everything the engine
and sweep layers publish:

* :class:`Counter` — monotonically increasing integer (pages promoted,
  epochs simulated, span nanoseconds).
* :class:`Gauge` — last-write-wins scalar (current hotness threshold).
* :class:`Histogram` — fixed log2 buckets: ``observe(v)`` lands in
  bucket ``bit_length(v)``, so bucket ``b`` covers ``[2^(b-1), 2^b)``.
  64 buckets span any int64 value; no allocation per observation.

Registries form a tree for multi-tenant partitioning: a
:meth:`MetricsRegistry.child` registry forwards every increment to its
parent, so per-tenant child registries *partition* the machine registry
exactly — the sum of tenant counters equals the machine counter, the
invariant :mod:`repro.multitenant` already maintains for its
epoch-metrics accounting.
"""

from __future__ import annotations

from typing import Iterator

#: log2 histogram resolution: bucket b covers [2^(b-1), 2^b)
HISTOGRAM_BUCKETS = 64


class Counter:
    """Monotonic integer counter, optionally forwarding to a parent."""

    __slots__ = ("value", "_parent")

    def __init__(self, parent: "Counter | None" = None) -> None:
        self.value = 0
        self._parent = parent

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got inc({n})")
        self.value += n
        if self._parent is not None:
            self._parent.inc(n)


class Gauge:
    """Last-write-wins scalar, optionally forwarding to a parent."""

    __slots__ = ("value", "_parent")

    def __init__(self, parent: "Gauge | None" = None) -> None:
        self.value = 0.0
        self._parent = parent

    def set(self, value: float) -> None:
        self.value = float(value)
        if self._parent is not None:
            self._parent.set(value)


class Histogram:
    """Fixed log2-bucket histogram (value distribution, e.g. batch sizes).

    ``observe(v)`` is O(1) and allocation-free: non-positive values land
    in bucket 0, value ``v >= 1`` in bucket ``v.bit_length()`` (clamped
    to the top bucket), so bucket boundaries are powers of two.
    """

    __slots__ = ("counts", "total", "count", "_parent")

    def __init__(self, parent: "Histogram | None" = None) -> None:
        self.counts = [0] * HISTOGRAM_BUCKETS
        self.total = 0
        self.count = 0
        self._parent = parent

    def observe(self, value: int) -> None:
        value = int(value)
        bucket = min(value.bit_length(), HISTOGRAM_BUCKETS - 1) if value > 0 else 0
        self.counts[bucket] += 1
        self.total += value
        self.count += 1
        if self._parent is not None:
            self._parent.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_bounds(bucket: int) -> tuple[int, int]:
        """Half-open ``[lo, hi)`` value range of one bucket."""
        if bucket <= 0:
            return (0, 1)
        return (1 << (bucket - 1), 1 << bucket)


class MetricsRegistry:
    """Create-or-get store of named metrics, snapshot-able to plain data.

    A registry built with ``parent=`` forwards every update to the
    same-named metric in the parent (creating it on demand), which is
    how the co-location engine partitions machine telemetry per tenant.
    """

    def __init__(self, parent: "MetricsRegistry | None" = None) -> None:
        self.parent = parent
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            up = self.parent.counter(name) if self.parent is not None else None
            metric = self._counters[name] = Counter(parent=up)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            up = self.parent.gauge(name) if self.parent is not None else None
            metric = self._gauges[name] = Gauge(parent=up)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            up = self.parent.histogram(name) if self.parent is not None else None
            metric = self._histograms[name] = Histogram(parent=up)
        return metric

    def child(self) -> "MetricsRegistry":
        """A registry whose every update also lands here (partitioning)."""
        return MetricsRegistry(parent=self)

    # ------------------------------------------------------------------
    def counters(self) -> Iterator[tuple[str, int]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def snapshot(self) -> dict:
        """Plain picklable/JSON-able dump of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"counts": list(h.counts), "total": h.total, "count": h.count}
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry (fan-in)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            hist = self.histogram(name)
            for bucket, n in enumerate(data["counts"]):
                hist.counts[bucket] += int(n)
            hist.total += int(data["total"])
            hist.count += int(data["count"])
