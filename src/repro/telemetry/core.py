"""Telemetry hub: modes, phase-timer spans, and the event trace buffer.

One :class:`Telemetry` object bundles a mode, a
:class:`~repro.telemetry.registry.MetricsRegistry` and (in trace mode)
a shared :class:`TraceBuffer`.  The process-global instance
(:func:`get_telemetry`) is configured from ``REPRO_TELEMETRY``:

* ``off`` (default) — spans are a shared no-op context manager and
  counters are inert singletons, so instrumented hot paths cost one
  attribute load and an empty ``with`` block (< 2 % on the smallest
  figure job, pinned by tests);
* ``metrics`` (aliases ``on``/``1``/``true``) — counters, gauges,
  histograms and span *totals* are collected;
* ``trace`` — everything above, plus every span and instant event is
  appended to the trace buffer for Chrome-trace export
  (:func:`repro.telemetry.export_chrome_trace`, loadable in Perfetto).

Spans measure wall clock (``time.perf_counter_ns``) and account
**exclusive** time: a nested span's duration is subtracted from its
parent, so per-phase totals (``profile``/``plan``/``migrate``/
``account``) sum without double counting even though migration spans
nest inside the policy's planning span.  Telemetry never feeds back
into simulation state, so enabling it cannot change a report.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from repro.telemetry.registry import MetricsRegistry

#: environment knob selecting the telemetry mode
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: modes, ordered by how much they collect
MODE_OFF = 0
MODE_METRICS = 1
MODE_TRACE = 2

_MODE_NAMES = {MODE_OFF: "off", MODE_METRICS: "metrics", MODE_TRACE: "trace"}
_MODE_ALIASES = {
    "": MODE_OFF,
    "off": MODE_OFF,
    "0": MODE_OFF,
    "false": MODE_OFF,
    "none": MODE_OFF,
    "metrics": MODE_METRICS,
    "on": MODE_METRICS,
    "1": MODE_METRICS,
    "true": MODE_METRICS,
    "trace": MODE_TRACE,
}


def parse_mode(raw: str | int | None) -> int:
    """Map a mode name (or ``REPRO_TELEMETRY`` value) to a mode int."""
    if isinstance(raw, int):
        if raw not in _MODE_NAMES:
            raise ValueError(f"unknown telemetry mode {raw!r}")
        return raw
    key = (raw or "").strip().lower()
    if key not in _MODE_ALIASES:
        known = ", ".join(sorted(k for k in _MODE_ALIASES if k))
        raise ValueError(f"unknown telemetry mode {raw!r} (known: {known})")
    return _MODE_ALIASES[key]


class _NoopSpan:
    """Shared do-nothing context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NOOP_SPAN = _NoopSpan()


class _NoopCounter:
    """Inert counter/gauge/histogram handed out when telemetry is off."""

    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: int) -> None:
        pass


NOOP_METRIC = _NoopCounter()


class TraceBuffer:
    """Bounded append-only store of span and instant events.

    Events are tuples ``(phase, name, ts_ns, dur_ns, track, args)``
    where ``phase`` is the Chrome trace-event type (``"X"`` complete,
    ``"i"`` instant).  Overflow drops new events and counts them, so a
    runaway trace degrades instead of eating the heap.
    """

    def __init__(self, max_events: int = 500_000) -> None:
        self.max_events = int(max_events)
        self.events: list[tuple] = []
        self.dropped = 0
        #: track id -> human label (Perfetto lane names)
        self.track_labels: dict[int, str] = {0: "sweep"}
        self._next_track = 1

    def new_track(self, label: str) -> int:
        """Allocate a trace lane (one per engine, lane 0 is the sweep)."""
        track = self._next_track
        self._next_track += 1
        self.track_labels[track] = label
        return track

    def add_span(self, name: str, start_ns: int, dur_ns: int, track: int) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(("X", name, start_ns, dur_ns, track, None))

    def add_instant(self, name: str, ts_ns: int, track: int, args: dict | None) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(("i", name, ts_ns, 0, track, args))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


class _Span:
    """One live phase timer; exclusive-time accounting via the stack."""

    __slots__ = ("tel", "name", "start", "child_ns")

    def __init__(self, tel: "Telemetry", name: str) -> None:
        self.tel = tel
        self.name = name
        self.child_ns = 0

    def __enter__(self) -> "_Span":
        self.tel._stack.append(self)
        self.start = self.tel.clock()
        return self

    def __exit__(self, *exc) -> bool:
        tel = self.tel
        dur = tel.clock() - self.start
        stack = tel._stack
        stack.pop()
        if stack:
            stack[-1].child_ns += dur
        reg = tel.registry
        reg.counter(f"phase.{self.name}.ns").inc(max(dur - self.child_ns, 0))
        reg.counter(f"phase.{self.name}.calls").inc()
        if tel.trace is not None and tel.mode >= MODE_TRACE:
            tel.trace.add_span(self.name, self.start, dur, tel.track)
        return False


class Telemetry:
    """Mode + registry + (optional) trace buffer + span stack.

    Engines get their own instance (private registry, shared trace
    buffer, own trace lane) via :func:`engine_telemetry`; the sweep
    layer uses the process-global instance directly.
    """

    def __init__(
        self,
        mode: int | str = MODE_OFF,
        registry: MetricsRegistry | None = None,
        trace: TraceBuffer | None = None,
        track: int = 0,
        clock=time.perf_counter_ns,
    ) -> None:
        self.mode = parse_mode(mode)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.track = track
        self.clock = clock
        self._stack: list[_Span] = []

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.mode >= MODE_METRICS

    @property
    def tracing(self) -> bool:
        return self.mode >= MODE_TRACE and self.trace is not None

    @property
    def mode_name(self) -> str:
        return _MODE_NAMES[self.mode]

    # ------------------------------------------------------------------
    def span(self, name: str):
        """Phase timer context manager; a shared no-op when disabled."""
        if self.mode == MODE_OFF:
            return NOOP_SPAN
        return _Span(self, name)

    def counter(self, name: str):
        if self.mode == MODE_OFF:
            return NOOP_METRIC
        return self.registry.counter(name)

    def gauge(self, name: str):
        if self.mode == MODE_OFF:
            return NOOP_METRIC
        return self.registry.gauge(name)

    def histogram(self, name: str):
        if self.mode == MODE_OFF:
            return NOOP_METRIC
        return self.registry.histogram(name)

    def event(self, name: str, **args) -> None:
        """Record an instant audit event (trace mode only)."""
        if self.tracing:
            self.trace.add_instant(name, self.clock(), self.track, args or None)

    @contextmanager
    def scoped_registry(self, registry: MetricsRegistry):
        """Temporarily route metrics to ``registry`` (tenant partitioning)."""
        prev = self.registry
        self.registry = registry
        try:
            yield registry
        finally:
            self.registry = prev

    # ------------------------------------------------------------------
    def phase_totals(self) -> dict[str, int]:
        """Exclusive wall-clock nanoseconds per span name."""
        out: dict[str, int] = {}
        for name, value in self.registry.counters():
            if name.startswith("phase.") and name.endswith(".ns"):
                out[name[len("phase.") : -len(".ns")]] = value
        return out

    def summary(self) -> dict:
        """Picklable digest: phase totals + full registry snapshot."""
        return {
            "mode": self.mode_name,
            "phases": self.phase_totals(),
            **self.registry.snapshot(),
        }


#: shared disabled instance: the default for components built without
#: an explicit telemetry hookup (stand-alone MigrationEngine in tests)
DISABLED = Telemetry(MODE_OFF)

_GLOBAL: Telemetry | None = None


def get_telemetry() -> Telemetry:
    """The process-global instance, built from ``REPRO_TELEMETRY`` once."""
    global _GLOBAL
    if _GLOBAL is None:
        mode = parse_mode(os.environ.get(TELEMETRY_ENV))
        trace = TraceBuffer() if mode >= MODE_TRACE else None
        _GLOBAL = Telemetry(mode, trace=trace)
    return _GLOBAL


def configure(mode: int | str, max_events: int = 500_000) -> Telemetry:
    """(Re)build the process-global telemetry at an explicit mode.

    The CLI's ``trace`` subcommand and tests use this instead of the
    environment variable; the previous global (and its buffers) is
    dropped wholesale so runs start clean.
    """
    global _GLOBAL
    mode = parse_mode(mode)
    trace = TraceBuffer(max_events) if mode >= MODE_TRACE else None
    _GLOBAL = Telemetry(mode, trace=trace)
    return _GLOBAL


def engine_telemetry(label: str = "engine") -> Telemetry:
    """A per-engine telemetry slice of the global configuration.

    Each engine gets a private registry (so per-job totals do not mix
    when a sweep runs many engines in one process) and its own lane in
    the *shared* trace buffer (so one Chrome trace shows every job).
    With telemetry off this returns the global disabled instance —
    zero per-engine allocation on the default path.
    """
    root = get_telemetry()
    if root.mode == MODE_OFF:
        return root
    track = root.trace.new_track(label) if root.trace is not None else 0
    return Telemetry(root.mode, trace=root.trace, track=track, clock=root.clock)
