"""End-to-end telemetry: metrics registry, phase timers, event tracing.

The observability layer every perf claim reports through:

* :mod:`repro.telemetry.registry` — process-local counters, gauges and
  log2-bucket histograms, with parent-forwarding child registries for
  per-tenant partitioning;
* :mod:`repro.telemetry.core` — the :class:`Telemetry` hub: modes
  driven by ``REPRO_TELEMETRY`` (``off``/``metrics``/``trace``),
  ``span(name)`` phase timers with exclusive-time accounting, and the
  bounded trace buffer;
* :mod:`repro.telemetry.export` — Chrome trace-event JSON (Perfetto)
  and the JSONL run manifest written next to sweep cache entries.

Enable with ``REPRO_TELEMETRY=metrics`` (counters + phase totals in
report annotations) or ``REPRO_TELEMETRY=trace`` (plus a Perfetto
trace); the default is ``off`` and costs nothing measurable.
"""

from repro.telemetry.core import (
    DISABLED,
    MODE_METRICS,
    MODE_OFF,
    MODE_TRACE,
    NOOP_METRIC,
    NOOP_SPAN,
    TELEMETRY_ENV,
    Telemetry,
    TraceBuffer,
    configure,
    engine_telemetry,
    get_telemetry,
    parse_mode,
)
from repro.telemetry.export import (
    MANIFEST_NAME,
    append_manifest,
    chrome_trace_events,
    export_chrome_trace,
    git_revision,
    manifest_record,
    read_manifest,
)
from repro.telemetry.registry import (
    HISTOGRAM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "DISABLED",
    "MODE_METRICS",
    "MODE_OFF",
    "MODE_TRACE",
    "NOOP_METRIC",
    "NOOP_SPAN",
    "TELEMETRY_ENV",
    "Telemetry",
    "TraceBuffer",
    "configure",
    "engine_telemetry",
    "get_telemetry",
    "parse_mode",
    "MANIFEST_NAME",
    "append_manifest",
    "chrome_trace_events",
    "export_chrome_trace",
    "git_revision",
    "manifest_record",
    "read_manifest",
    "HISTOGRAM_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
